// Reproduces Table 1: compression ratio (% of the dense rows*cols*8
// representation) of gzip, xz, csrv, re_32, re_iv and re_ans on the seven
// evaluation matrices, next to the paper's reported percentages.
//
// Expected shape (paper): xz < gzip always; csrv already beats gzip on the
// few-distinct-value matrices; re_32 <= csrv with the gap tracking how much
// cross-row structure RePair finds (none for Susy, ~7x for Census);
// re_iv < re_32 and re_ans < re_iv throughout; re_ans approaches (and for
// Census beats) xz while remaining multiplication-friendly.

#include <cstdio>

#include "baselines/external/external_compressors.hpp"
#include "bench/bench_common.hpp"
#include "core/any_matrix.hpp"
#include "matrix/stats.hpp"
#include "util/timer.hpp"

using namespace gcm;

int main(int argc, char** argv) {
  CliParser cli("table1_compression", "Table 1: compression ratios");
  bench::AddCommonFlags(&cli);
  cli.AddFlag("xz", "true", "include the (slow) xz baseline");
  if (!cli.Parse(argc, argv)) return 0;

  // Baselines degrade to "-" columns when their backend is compiled out
  // (GCM_HAVE_ZLIB/GCM_HAVE_LZMA = 0) instead of dying on the stub's throw.
  bool run_gzip = GzipAvailable();
  bool run_xz = cli.GetBool("xz") && XzAvailable();
  if (!run_gzip) std::printf("note: gzip baseline unavailable (built without zlib)\n");
  if (cli.GetBool("xz") && !XzAvailable()) {
    std::printf("note: xz baseline unavailable (built without liblzma)\n");
  }

  bench::PrintHeader(
      "Table 1 -- compression ratio, % of dense size (lower is better)\n"
      "rows scaled by 1/" + cli.GetString("scale") +
      "; [p] columns are the paper's values on the full datasets");
  std::printf("%-10s %9s %5s %8s %9s | %7s %7s %7s %7s %7s %7s\n", "matrix",
              "rows", "cols", "nnz%", "#dist", "gzip", "xz", "csrv", "re_32",
              "re_iv", "re_ans");

  bench::CsvAppender csv(cli);
  for (const DatasetProfile* profile : bench::SelectDatasets(cli)) {
    DenseMatrix dense = bench::Generate(*profile, cli);
    MatrixStats stats = ComputeStats(dense);
    u64 dense_bytes = dense.UncompressedBytes();

    u64 gzip = run_gzip ? GzipCompressedSize(dense) : 0;
    u64 xz = run_xz ? XzCompressedSize(dense) : 0;
    if (run_gzip) {
      csv.Row("table1", profile->name, "gzip", "size_pct",
              bench::Pct(gzip, dense_bytes));
    }
    if (run_xz) {
      csv.Row("table1", profile->name, "xz", "size_pct",
              bench::Pct(xz, dense_bytes));
    }

    // Backend-generic: each column is one engine spec string.
    const char* specs[4] = {"csrv", "gcm:re_32", "gcm:re_iv", "gcm:re_ans"};
    double ratio[4];
    for (int f = 0; f < 4; ++f) {
      AnyMatrix m = bench::BuildCached(dense, specs[f], *profile, cli);
      ratio[f] = bench::Pct(m.CompressedBytes(), dense_bytes);
      csv.Row("table1", profile->name, specs[f], "size_pct", ratio[f]);
    }

    std::printf("%-10s %9zu %5zu %7.2f%% %9zu | ", profile->name.c_str(),
                stats.rows, stats.cols, stats.density * 100.0,
                stats.distinct_values);
    if (run_gzip) {
      std::printf("%6.2f%% ", bench::Pct(gzip, dense_bytes));
    } else {
      std::printf("%7s ", "-");
    }
    if (run_xz) {
      std::printf("%6.2f%% ", bench::Pct(xz, dense_bytes));
    } else {
      std::printf("%7s ", "-");
    }
    std::printf("%6.2f%% %6.2f%% %6.2f%% %6.2f%%\n", ratio[0], ratio[1],
                ratio[2], ratio[3]);
    std::printf("%-10s %9s %5s %8s %9s | %6.2f%% %6.2f%% %6.2f%% %6.2f%% "
                "%6.2f%% %6.2f%%  [p]\n",
                "", "", "", "", "", profile->paper_gzip_pct,
                profile->paper_xz_pct, profile->paper_csrv_pct,
                profile->paper_re32_pct, profile->paper_reiv_pct,
                profile->paper_reans_pct);
  }
  std::printf("\nNote: absolute percentages differ from the paper (synthetic"
              " replicas, scaled\nrows); the comparison target is the"
              " *ordering* and relative gaps per matrix.\n");
  return 0;
}
