// Reproduces Figure 3: peak-memory ratio and running-time ratio of the
// multithreaded re_ans / re_iv multiplication versus the single-thread
// version, for 1/4/8/12/16 threads (the matrix is split into as many row
// blocks as threads).
//
// Expected shape (paper): memory ratios grow mildly with the thread count
// (per-block W arrays and slightly worse per-block compression), staying
// below ~1.5x at 16 threads except for the most compressible inputs
// (Covtype, Census) where fixed per-block overheads dominate; time ratios
// drop towards 1/threads on a machine with enough cores. Peak-memory
// ratios are hardware-independent and are the primary reproduction target
// here; this container may expose a single core, making time ratios flat.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/power_iteration.hpp"
#include "util/memory_tracker.hpp"

using namespace gcm;

namespace {

struct Measurement {
  u64 peak_bytes;
  double seconds_per_iter;
};

Measurement Measure(const DenseMatrix& dense, const std::string& spec,
                    std::size_t threads, std::size_t iters) {
  u64 before_build = MemoryTracker::CurrentBytes();
  AnyMatrix matrix = AnyMatrix::Build(
      dense, spec + "?blocks=" + std::to_string(threads));
  ThreadPool pool(threads);
  PowerIterationResult result = RunPowerIteration(
      matrix, iters, MulContext{threads == 1 ? nullptr : &pool});
  u64 attributable = result.peak_heap_bytes > before_build
                         ? result.peak_heap_bytes - before_build
                         : 0;
  return {attributable, result.seconds_per_iteration};
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fig3_scaling",
                "Figure 3: time and memory vs thread count");
  bench::AddCommonFlags(&cli);
  cli.AddFlag("iters", "30", "iterations of Eq. (4) per configuration");
  if (!cli.Parse(argc, argv)) return 0;
  const std::size_t iters = static_cast<std::size_t>(cli.GetInt("iters"));
  const std::size_t kThreads[] = {1, 4, 8, 12, 16};

  for (const std::string spec : {"gcm:re_ans", "gcm:re_iv"}) {
    bench::PrintHeader("Figure 3 -- " + spec +
                       ": ratio vs single-thread (memory, then time)");
    std::printf("%-10s | %7s %7s %7s %7s %7s | %7s %7s %7s %7s %7s\n",
                "matrix", "mem x1", "x4", "x8", "x12", "x16", "time x1", "x4",
                "x8", "x12", "x16");
    for (const DatasetProfile* profile : bench::SelectDatasets(cli)) {
      DenseMatrix dense = bench::Generate(*profile, cli);
      double mem_ratio[5], time_ratio[5];
      Measurement base = Measure(dense, spec, 1, iters);
      for (int t = 0; t < 5; ++t) {
        Measurement m = kThreads[t] == 1
                            ? base
                            : Measure(dense, spec, kThreads[t], iters);
        mem_ratio[t] = static_cast<double>(m.peak_bytes) /
                       static_cast<double>(base.peak_bytes);
        time_ratio[t] = m.seconds_per_iter / base.seconds_per_iter;
      }
      std::printf("%-10s | %7.3f %7.3f %7.3f %7.3f %7.3f | %7.3f %7.3f "
                  "%7.3f %7.3f %7.3f\n",
                  profile->name.c_str(), mem_ratio[0], mem_ratio[1],
                  mem_ratio[2], mem_ratio[3], mem_ratio[4], time_ratio[0],
                  time_ratio[1], time_ratio[2], time_ratio[3],
                  time_ratio[4]);
    }
  }
  std::printf("\nThis machine exposes %u hardware thread(s); with one core "
              "the paper's time-ratio\ndecrease cannot manifest, while the "
              "memory ratios reproduce structurally.\n",
              std::thread::hardware_concurrency());
  return 0;
}
