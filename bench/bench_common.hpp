// Shared infrastructure for the table/figure reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper on the
// synthetic dataset replicas. Datasets are scaled by --scale (rows =
// paper_rows / scale) so the default run finishes in minutes on a laptop;
// --scale 1 reproduces the full row counts given enough time and memory.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "matrix/datasets.hpp"
#include "matrix/dense_matrix.hpp"
#include "util/cli.hpp"
#include "util/common.hpp"

namespace gcm::bench {

/// Registers the flags shared by all benches.
inline void AddCommonFlags(CliParser* cli) {
  cli->AddFlag("scale", "500",
               "row-count divisor applied to the paper's datasets");
  cli->AddFlag("datasets", "all",
               "comma-separated dataset names (default: all seven)");
}

/// Resolves --datasets into profile pointers.
inline std::vector<const DatasetProfile*> SelectDatasets(
    const CliParser& cli) {
  std::vector<const DatasetProfile*> selected;
  std::string spec = cli.GetString("datasets");
  if (spec == "all") {
    for (const DatasetProfile& profile : PaperDatasets()) {
      selected.push_back(&profile);
    }
    return selected;
  }
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    std::string name = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!name.empty()) selected.push_back(&DatasetByName(name));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  GCM_CHECK_MSG(!selected.empty(), "no datasets selected");
  return selected;
}

inline DenseMatrix Generate(const DatasetProfile& profile,
                            const CliParser& cli) {
  return GenerateDataset(profile,
                         static_cast<std::size_t>(cli.GetInt("scale")));
}

/// Percentage of the dense footprint, printed as the paper does.
inline double Pct(u64 bytes, u64 dense_bytes) {
  return 100.0 * static_cast<double>(bytes) /
         static_cast<double>(dense_bytes);
}

inline void PrintHeader(const std::string& title) {
  std::printf("==================================================="
              "=========================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================="
              "=========================\n");
}

}  // namespace gcm::bench
