// Shared infrastructure for the table/figure reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper on the
// synthetic dataset replicas. Datasets are scaled by --scale (rows =
// paper_rows / scale) so the default run finishes in minutes on a laptop;
// --scale 1 reproduces the full row counts given enough time and memory.
#pragma once

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/any_matrix.hpp"
#include "matrix/datasets.hpp"
#include "matrix/dense_matrix.hpp"
#include "util/cli.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace gcm::bench {

/// Registers the flags shared by all benches.
inline void AddCommonFlags(CliParser* cli) {
  cli->AddFlag("scale", "500",
               "row-count divisor applied to the paper's datasets");
  cli->AddFlag("datasets", "all",
               "comma-separated dataset names (default: all seven)");
  cli->AddFlag("snapshot_cache", "",
               "directory caching compressed operands as snapshots keyed by "
               "(dataset, scale, spec); empty = rebuild every run");
  cli->AddFlag("csv", "",
               "append tidy result rows (bench,dataset,config,metric,value) "
               "to this CSV file");
  cli->AddFlag("build_threads", "0",
               "construction worker threads for operand builds (0 = all "
               "hardware threads, 1 = sequential); builds are deterministic, "
               "so timed results are unaffected");
}

/// The shared construction pool of a bench run (per --build_threads;
/// nullptr when 1). Benches time multiplication, not construction, so
/// building operands on the pool only shortens the run -- determinism
/// guarantees the operands are bit-identical to a sequential build.
/// Spawned on the first call, so cache-hit-only runs never pay for it.
inline ThreadPool* BuildPool(const CliParser& cli) {
  static bool spawned = false;
  static std::unique_ptr<ThreadPool> pool;
  if (!spawned) {
    pool = MakePoolForThreads(
        static_cast<std::size_t>(cli.GetInt("build_threads")));
    spawned = true;
  }
  return pool.get();
}

/// Resolves --datasets into profile pointers.
inline std::vector<const DatasetProfile*> SelectDatasets(
    const CliParser& cli) {
  std::vector<const DatasetProfile*> selected;
  std::string spec = cli.GetString("datasets");
  if (spec == "all") {
    for (const DatasetProfile& profile : PaperDatasets()) {
      selected.push_back(&profile);
    }
    return selected;
  }
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    std::string name = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!name.empty()) selected.push_back(&DatasetByName(name));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  GCM_CHECK_MSG(!selected.empty(), "no datasets selected");
  return selected;
}

inline DenseMatrix Generate(const DatasetProfile& profile,
                            const CliParser& cli) {
  return GenerateDataset(profile,
                         static_cast<std::size_t>(cli.GetInt("scale")));
}

/// Percentage of the dense footprint, printed as the paper does.
inline double Pct(u64 bytes, u64 dense_bytes) {
  return 100.0 * static_cast<double>(bytes) /
         static_cast<double>(dense_bytes);
}

/// Builds an engine matrix for a bench, serving it from the snapshot cache
/// when `--snapshot_cache DIR` is set: the first run compresses and saves,
/// later runs load the stored representation as-is (RePair never re-runs).
/// Cache keys are (dataset, scale, spec); stale entries whose dimensions no
/// longer match the generated operand are rebuilt and overwritten.
inline AnyMatrix BuildCached(const DenseMatrix& dense,
                             const std::string& spec,
                             const DatasetProfile& profile,
                             const CliParser& cli) {
  std::string dir = cli.GetString("snapshot_cache");
  if (dir.empty()) {
    return AnyMatrix::Build(dense, spec, {.pool = BuildPool(cli)});
  }

  std::string key = profile.name + "_s" + cli.GetString("scale") + "_" + spec;
  for (char& c : key) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-') {
      c = '-';
    }
  }
  std::filesystem::create_directories(dir);
  std::filesystem::path path =
      std::filesystem::path(dir) / (key + ".gcsnap");
  if (std::filesystem::exists(path)) {
    try {
      AnyMatrix cached = AnyMatrix::Load(path.string());
      if (cached.rows() == dense.rows() && cached.cols() == dense.cols()) {
        return cached;
      }
      std::fprintf(stderr, "note: cache entry %s is stale, rebuilding\n",
                   path.string().c_str());
    } catch (const std::exception& e) {
      // An interrupted earlier run may have left a corrupt entry; the
      // cache is disposable, so rebuild rather than fail the bench.
      std::fprintf(stderr, "note: cache entry %s is unreadable (%s), "
                           "rebuilding\n",
                   path.string().c_str(), e.what());
    }
  }
  AnyMatrix built = AnyMatrix::Build(dense, spec, {.pool = BuildPool(cli)});
  // Write-then-rename so an interrupted save never leaves a truncated
  // entry under the final name.
  std::filesystem::path staging = path;
  staging += ".tmp";
  built.Save(staging.string());
  std::filesystem::rename(staging, path);
  return built;
}

/// Appends tidy rows to the shared bench CSV (`--csv FILE`); disabled when
/// the flag is empty. The header is written once per file.
class CsvAppender {
 public:
  explicit CsvAppender(const CliParser& cli) {
    std::string path = cli.GetString("csv");
    if (path.empty()) return;
    bool fresh = !std::filesystem::exists(path) ||
                 std::filesystem::file_size(path) == 0;
    file_ = std::fopen(path.c_str(), "a");
    GCM_CHECK_MSG(file_ != nullptr, "cannot open csv file: " << path);
    if (fresh) {
      std::fprintf(file_, "bench,dataset,config,metric,value\n");
    }
  }
  ~CsvAppender() {
    if (file_ != nullptr) std::fclose(file_);
  }
  CsvAppender(const CsvAppender&) = delete;
  CsvAppender& operator=(const CsvAppender&) = delete;

  bool enabled() const { return file_ != nullptr; }

  void Row(const std::string& bench, const std::string& dataset,
           const std::string& config, const std::string& metric,
           double value) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s,%s,%s,%s,%.6g\n", bench.c_str(), dataset.c_str(),
                 config.c_str(), metric.c_str(), value);
  }

 private:
  std::FILE* file_ = nullptr;
};

inline void PrintHeader(const std::string& title) {
  std::printf("==================================================="
              "=========================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================="
              "=========================\n");
}

}  // namespace gcm::bench
