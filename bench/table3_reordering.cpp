// Reproduces Table 3: compression (% of dense size) achieved by the three
// competitive column-reordering algorithms -- LKH (our TSP local search),
// PathCover and MWM -- with the locally-pruned CSM for sparsity parameter
// k in {4, 8, 16}, followed by re_ans compression of the whole reordered
// matrix (Section 5.3).
//
// Expected shape (paper): reordering never hurts much and helps most on
// Airline78 / Covtype / Census; for Susy all algorithms coincide (there is
// nothing to exploit); no algorithm dominates -- PathCover and MWM split
// the wins while LKH is close but never worth its run time.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/gc_matrix.hpp"
#include "reorder/reorder.hpp"
#include "util/timer.hpp"

using namespace gcm;

int main(int argc, char** argv) {
  CliParser cli("table3_reordering",
                "Table 3: column reordering + re_ans compression");
  bench::AddCommonFlags(&cli);
  cli.AddFlag("csm_sample", "512",
              "rows used to estimate the column-similarity matrix");
  if (!cli.Parse(argc, argv)) return 0;

  bench::PrintHeader(
      "Table 3 -- re_ans compression after column reordering (locally "
      "pruned CSM),\n% of dense size; 'none' = original order");
  std::printf("%-10s %4s | %8s %8s %8s %8s\n", "matrix", "k", "none", "lkh",
              "pathcover", "mwm");

  bench::CsvAppender csv(cli);
  const std::size_t kSparsity[] = {4, 8, 16};
  for (const DatasetProfile* profile : bench::SelectDatasets(cli)) {
    DenseMatrix dense = bench::Generate(*profile, cli);
    u64 dense_bytes = dense.UncompressedBytes();
    AnyMatrix baseline = bench::BuildCached(dense, "gcm:re_ans", *profile,
                                            cli);
    double baseline_pct = bench::Pct(baseline.CompressedBytes(), dense_bytes);
    csv.Row("table3", profile->name, "none", "size_pct", baseline_pct);

    // Pair scores are computed once; pruning is applied per k.
    CsmOptions full;
    full.row_sample = static_cast<std::size_t>(cli.GetInt("csm_sample"));
    Timer csm_timer;
    ColumnSimilarityMatrix scores =
        ColumnSimilarityMatrix::Compute(dense, full);
    double csm_seconds = csm_timer.Seconds();

    for (std::size_t k : kSparsity) {
      CsmOptions pruned_options;
      pruned_options.prune = CsmPrune::kLocal;
      pruned_options.k = k;
      ColumnSimilarityMatrix pruned =
          ColumnSimilarityMatrix::Prune(scores, pruned_options);
      double pct[3];
      ReorderAlgorithm algorithms[3] = {ReorderAlgorithm::kTsp,
                                        ReorderAlgorithm::kPathCover,
                                        ReorderAlgorithm::kMwm};
      const char* labels[3] = {"lkh", "pathcover", "mwm"};
      for (int a = 0; a < 3; ++a) {
        std::vector<u32> order = ComputeColumnOrder(pruned, algorithms[a]);
        CsrvMatrix csrv = CsrvMatrix::FromDense(dense, &order);
        GcMatrix gc = GcMatrix::FromCsrv(csrv, {GcFormat::kReAns, 12, 0});
        pct[a] = bench::Pct(gc.CompressedBytes(), dense_bytes);
        csv.Row("table3", profile->name,
                std::string(labels[a]) + "_k" + std::to_string(k),
                "size_pct", pct[a]);
      }
      std::printf("%-10s %4zu | %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
                  profile->name.c_str(), k, baseline_pct, pct[0], pct[1],
                  pct[2]);
    }
    std::printf("%-10s      (CSM pair scores: %.2f s on %zu sampled rows)\n",
                "", csm_seconds,
                std::min<std::size_t>(dense.rows(), full.row_sample));
  }
  return 0;
}
