// Microbenchmarks of the individual kernels (google-benchmark): RePair
// construction, rANS encode/decode, packed-array access, the four MVM
// formats, engine dispatch, CSM computation and CLA compression. These
// quantify the constant factors behind the table-level results (e.g. why
// re_32 multiplies faster than re_iv, and re_iv faster than re_ans).
//
//   $ ./micro_kernels            # full timed run
//   $ ./micro_kernels --smoke    # every kernel exactly once, untimed
//
// --smoke is the CI mode (a CTest target registers it): it exercises the
// rANS and packed-int-vector kernels on every run without paying for
// statistically meaningful timings.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "baselines/cla/cla_matrix.hpp"
#include "core/any_matrix.hpp"
#include "core/blocked_matrix.hpp"
#include "core/gc_matrix.hpp"
#include "encoding/snapshot.hpp"
#include "grammar/repair.hpp"
#include "matrix/datasets.hpp"
#include "reorder/column_similarity.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace gcm {
namespace {

/// Attaches the throughput columns the bench gate tracks for the MVM-style
/// kernels: bytes_per_second (GB/s over the *compressed* payload -- the
/// bandwidth the compressed kernel actually streams) and rows_per_second.
void SetMvmThroughput(benchmark::State& state, u64 compressed_bytes,
                      std::size_t rows_per_iteration) {
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<benchmark::IterationCount>(compressed_bytes));
  state.counters["rows_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(rows_per_iteration),
      benchmark::Counter::kIsRate);
}

const DenseMatrix& CensusMatrix() {
  static const DenseMatrix matrix =
      GenerateDatasetRows(DatasetByName("Census"), 3000);
  return matrix;
}

const CsrvMatrix& CensusCsrv() {
  static const CsrvMatrix csrv = CsrvMatrix::FromDense(CensusMatrix());
  return csrv;
}

std::vector<double> RandomVector(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.NextDouble() * 2.0 - 1.0;
  return v;
}

void BM_RePairCompress(benchmark::State& state) {
  const CsrvMatrix& csrv = CensusCsrv();
  u64 alphabet = 1 + csrv.dictionary().size() * csrv.cols();
  RePairConfig config;
  config.forbidden_terminal = kCsrvSentinel;
  for (auto _ : state) {
    RePairResult result = RePairCompress(
        csrv.sequence().ToVector(), static_cast<u32>(alphabet), config);
    benchmark::DoNotOptimize(result.final_sequence.data());
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<benchmark::IterationCount>(csrv.sequence().size()));
}
BENCHMARK(BM_RePairCompress)->Unit(benchmark::kMillisecond);

void BM_RansEncode(benchmark::State& state) {
  Rng rng(1);
  std::vector<u32> symbols(1 << 18);
  for (auto& s : symbols) s = static_cast<u32>(rng.SkewedBelow(65536, 0.999));
  for (auto _ : state) {
    RansStream stream = RansEncode(symbols);
    benchmark::DoNotOptimize(stream.chunks.data());
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<benchmark::IterationCount>(symbols.size()));
}
BENCHMARK(BM_RansEncode)->Unit(benchmark::kMillisecond);

void BM_RansDecode(benchmark::State& state) {
  Rng rng(2);
  std::vector<u32> symbols(1 << 18);
  for (auto& s : symbols) s = static_cast<u32>(rng.SkewedBelow(65536, 0.999));
  RansStream stream = RansEncode(symbols);
  for (auto _ : state) {
    RansDecoder decoder(stream);
    std::vector<u32> out = decoder.DecodeAll();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<benchmark::IterationCount>(symbols.size()));
}
BENCHMARK(BM_RansDecode)->Unit(benchmark::kMillisecond);

void BM_IntVectorAccess(benchmark::State& state) {
  Rng rng(3);
  IntVector packed(1 << 20, 13);
  for (std::size_t i = 0; i < packed.size(); ++i) {
    packed.Set(i, rng.Next() & 0x1fff);
  }
  for (auto _ : state) {
    u64 sum = 0;
    for (std::size_t i = 0; i < packed.size(); ++i) sum += packed.Get(i);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<benchmark::IterationCount>(packed.size()));
}
BENCHMARK(BM_IntVectorAccess);

void BM_PlainVectorAccess(benchmark::State& state) {
  Rng rng(4);
  std::vector<u32> plain(1 << 20);
  for (auto& v : plain) v = static_cast<u32>(rng.Next() & 0x1fff);
  for (auto _ : state) {
    u64 sum = 0;
    for (u32 v : plain) sum += v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<benchmark::IterationCount>(plain.size()));
}
BENCHMARK(BM_PlainVectorAccess);

void MvmRight(benchmark::State& state, GcFormat format) {
  GcMatrix gc = GcMatrix::FromCsrv(CensusCsrv(), {format, 12, 0});
  std::vector<double> x = RandomVector(gc.cols(), 5);
  for (auto _ : state) {
    std::vector<double> y = gc.MultiplyRight(x);
    benchmark::DoNotOptimize(y.data());
  }
  SetMvmThroughput(state, gc.CompressedBytes(), gc.rows());
}
void BM_MvmRightCsrv(benchmark::State& s) { MvmRight(s, GcFormat::kCsrv); }
void BM_MvmRightRe32(benchmark::State& s) { MvmRight(s, GcFormat::kRe32); }
void BM_MvmRightReIv(benchmark::State& s) { MvmRight(s, GcFormat::kReIv); }
void BM_MvmRightReAns(benchmark::State& s) { MvmRight(s, GcFormat::kReAns); }
BENCHMARK(BM_MvmRightCsrv)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MvmRightRe32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MvmRightReIv)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MvmRightReAns)->Unit(benchmark::kMicrosecond);

void MvmLeft(benchmark::State& state, GcFormat format) {
  GcMatrix gc = GcMatrix::FromCsrv(CensusCsrv(), {format, 12, 0});
  std::vector<double> y = RandomVector(gc.rows(), 6);
  for (auto _ : state) {
    std::vector<double> x = gc.MultiplyLeft(y);
    benchmark::DoNotOptimize(x.data());
  }
  SetMvmThroughput(state, gc.CompressedBytes(), gc.rows());
}
void BM_MvmLeftCsrv(benchmark::State& s) { MvmLeft(s, GcFormat::kCsrv); }
void BM_MvmLeftRe32(benchmark::State& s) { MvmLeft(s, GcFormat::kRe32); }
void BM_MvmLeftReIv(benchmark::State& s) { MvmLeft(s, GcFormat::kReIv); }
void BM_MvmLeftReAns(benchmark::State& s) { MvmLeft(s, GcFormat::kReAns); }
BENCHMARK(BM_MvmLeftCsrv)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MvmLeftRe32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MvmLeftReIv)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MvmLeftReAns)->Unit(benchmark::kMicrosecond);

// Multi-vector kernels at the batching server's grain (k = 16): one
// grammar expansion serves 16 vectors, so the kb-wide accumulate loops
// (simd::Add / simd::Axpy) dominate -- these are the rows the SIMD gate
// watches most closely.
constexpr std::size_t kMultiK = 16;

DenseMatrix RandomDense(std::size_t rows, std::size_t cols, u64 seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.Set(r, c, rng.NextDouble() * 2.0 - 1.0);
    }
  }
  return m;
}

void MvmRightMulti(benchmark::State& state, const std::string& spec) {
  AnyMatrix m = AnyMatrix::Build(CensusMatrix(), spec);
  DenseMatrix x = RandomDense(m.cols(), kMultiK, 11);
  for (auto _ : state) {
    DenseMatrix y = m.MultiplyRightMulti(x);
    benchmark::DoNotOptimize(y.At(0, 0));
  }
  SetMvmThroughput(state, m.CompressedBytes(), m.rows() * kMultiK);
}
void BM_MvmRightMulti16Re32(benchmark::State& s) {
  MvmRightMulti(s, "gcm:re_32");
}
void BM_MvmRightMulti16Csrv(benchmark::State& s) {
  MvmRightMulti(s, "gcm:csrv");
}
BENCHMARK(BM_MvmRightMulti16Re32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MvmRightMulti16Csrv)->Unit(benchmark::kMicrosecond);

void BM_MvmLeftMulti16Re32(benchmark::State& state) {
  AnyMatrix m = AnyMatrix::Build(CensusMatrix(), "gcm:re_32");
  DenseMatrix x = RandomDense(kMultiK, m.rows(), 12);
  for (auto _ : state) {
    DenseMatrix y = m.MultiplyLeftMulti(x);
    benchmark::DoNotOptimize(y.At(0, 0));
  }
  SetMvmThroughput(state, m.CompressedBytes(), m.rows() * kMultiK);
}
BENCHMARK(BM_MvmLeftMulti16Re32)->Unit(benchmark::kMicrosecond);

// Raw facade primitive: the peak the kb-wide kernels chase. The run name
// carries the compiled backend so scalar and avx2 CSVs are tellable apart.
void BM_SimdAxpy(benchmark::State& state) {
  constexpr std::size_t kN = 4096;
  std::vector<double> x = RandomVector(kN, 13);
  std::vector<double> out(kN, 0.0);
  double v = 1.000000059604645;  // keeps out finite across iterations
  for (auto _ : state) {
    simd::Axpy(out.data(), v, x.data(), kN);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<benchmark::IterationCount>(2 * kN * sizeof(double)));
  state.SetLabel(simd::BackendName());
}
BENCHMARK(BM_SimdAxpy);

// Row extraction with and without the hot-rule expansion cache: the cold
// variant re-walks the grammar per row, the hot one streams cached
// terminal expansions (assignment-style path; see
// GcMatrix::ConfigureRuleCache).
void ExtractRows(benchmark::State& state, u64 cache_bytes) {
  GcMatrix gc = GcMatrix::FromCsrv(CensusCsrv(), {GcFormat::kRe32, 12, 0});
  gc.ConfigureRuleCache(cache_bytes);
  std::size_t r = 0;
  for (auto _ : state) {
    std::vector<double> row = gc.ExtractRow(r);
    benchmark::DoNotOptimize(row.data());
    r = (r + 1) % gc.rows();
  }
  state.counters["rows_per_second"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  RuleCacheStats cache = gc.rule_cache_stats();
  state.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(cache.hits));
}
void BM_ExtractRowCold(benchmark::State& s) { ExtractRows(s, 0); }
void BM_ExtractRowHotCache(benchmark::State& s) {
  ExtractRows(s, 4ull << 20);
}
BENCHMARK(BM_ExtractRowCold)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ExtractRowHotCache)->Unit(benchmark::kMicrosecond);

void BM_CsmCompute(benchmark::State& state) {
  DenseMatrix m = GenerateDatasetRows(DatasetByName("Covtype"), 512);
  for (auto _ : state) {
    ColumnSimilarityMatrix csm = ColumnSimilarityMatrix::Compute(m);
    benchmark::DoNotOptimize(csm.edge_count());
  }
}
BENCHMARK(BM_CsmCompute)->Unit(benchmark::kMillisecond);

void BM_ClaCompress(benchmark::State& state) {
  const DenseMatrix& m = CensusMatrix();
  for (auto _ : state) {
    ClaMatrix cla = ClaMatrix::Compress(m);
    benchmark::DoNotOptimize(cla.CompressedBytes());
  }
}
BENCHMARK(BM_ClaCompress)->Unit(benchmark::kMillisecond);

void BM_ClaMvmRight(benchmark::State& state) {
  ClaMatrix cla = ClaMatrix::Compress(CensusMatrix());
  std::vector<double> x = RandomVector(cla.cols(), 7);
  for (auto _ : state) {
    std::vector<double> y = cla.MultiplyRight(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ClaMvmRight)->Unit(benchmark::kMicrosecond);

// Engine dispatch overhead: same kernel as BM_MvmRightRe32 but through the
// type-erased AnyMatrix *Into path with a preallocated output. The delta
// against the direct call is the cost of the virtual dispatch + checks.
void BM_AnyMatrixMvmRight(benchmark::State& state) {
  AnyMatrix m = AnyMatrix::Build(CensusMatrix(), "gcm:re_32");
  std::vector<double> x = RandomVector(m.cols(), 8);
  std::vector<double> y(m.rows());
  for (auto _ : state) {
    m.MultiplyRightInto(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AnyMatrixMvmRight)->Unit(benchmark::kMicrosecond);

// Scatter/gather overhead of the serving layer: the same matrix as
// BM_AnyMatrixMvmRight but split into row-range shards, sequential and
// shard-parallel. The sequential delta against the unsharded engine call
// is the cost of the scatter bookkeeping; the pooled run shows what the
// shards buy back.
void ShardedMvmRight(benchmark::State& state, bool pooled) {
  AnyMatrix sharded = AnyMatrix::Build(
      CensusMatrix(), "sharded?inner=gcm:re_32&shards=8");
  ThreadPool pool(4);
  MulContext ctx{pooled ? &pool : nullptr};
  std::vector<double> x = RandomVector(sharded.cols(), 9);
  std::vector<double> y(sharded.rows());
  for (auto _ : state) {
    sharded.MultiplyRightInto(x, y, ctx);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<benchmark::IterationCount>(sharded.rows()));
}

void BM_ShardedMvmRightSequential(benchmark::State& state) {
  ShardedMvmRight(state, false);
}
BENCHMARK(BM_ShardedMvmRightSequential)->Unit(benchmark::kMicrosecond);

void BM_ShardedMvmRightPooled(benchmark::State& state) {
  ShardedMvmRight(state, true);
}
BENCHMARK(BM_ShardedMvmRightPooled)->Unit(benchmark::kMicrosecond);

// Cold-start cost of bringing one shard snapshot into service: the
// copying path (read the whole file into a heap buffer, every array
// owned) vs the zero-copy path (map the file, borrow payload arrays out
// of the mapping). Each iteration deserializes and then runs one multiply
// so the mapped variant pays its first-touch page faults inside the
// timed region -- the honest comparison, since an untouched mapping is
// free by construction. bytes_per_second is over the snapshot file, i.e.
// cold shards brought into service per second per byte of store.
const std::string& ShardSnapshotPath() {
  static const std::string path = [] {
    std::string p = (std::filesystem::temp_directory_path() /
                     "gcm_bench_shard.gcsnap")
                        .string();
    AnyMatrix::Build(CensusMatrix(), "csr").Save(p);
    return p;
  }();
  return path;
}

void ShardLoad(benchmark::State& state, bool mapped) {
  const std::string& path = ShardSnapshotPath();
  u64 file_bytes = ReadFileBytes(path).size();
  std::vector<double> x = RandomVector(CensusMatrix().cols(), 17);
  for (auto _ : state) {
    AnyMatrix m = mapped ? AnyMatrix::Load(path)
                         : AnyMatrix::LoadSnapshotBytes(ReadFileBytes(path));
    std::vector<double> y = m.MultiplyRight(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(
      state.iterations() * static_cast<benchmark::IterationCount>(file_bytes));
}

void BM_ShardLoadCopy(benchmark::State& state) { ShardLoad(state, false); }
BENCHMARK(BM_ShardLoadCopy)->Unit(benchmark::kMicrosecond);

void BM_ShardLoadMmap(benchmark::State& state) { ShardLoad(state, true); }
BENCHMARK(BM_ShardLoadMmap)->Unit(benchmark::kMicrosecond);

// Construction throughput of the producer pipeline: per-block RePair
// builds of a blocked matrix, sequential vs on a 4-thread BuildContext
// pool. items_per_second in micro_kernels.csv is blocks/sec; wall time is
// the honest measure of a pooled build, so both variants use real time
// (cpu_time would only show the calling thread). bench_gate picks the new
// rows up like every other micro kernel: first run passes with a note,
// later runs gate against the uploaded baseline.
void BlockedGcBuild(benchmark::State& state, std::size_t threads) {
  const DenseMatrix& m = CensusMatrix();
  constexpr std::size_t kBlocks = 8;
  std::unique_ptr<ThreadPool> pool;
  BuildContext ctx;
  if (threads > 0) {
    pool = std::make_unique<ThreadPool>(threads);
    ctx.pool = pool.get();
  }
  for (auto _ : state) {
    BlockedGcMatrix built =
        BlockedGcMatrix::Build(m, kBlocks, {GcFormat::kRe32, 12, 0}, {}, ctx);
    benchmark::DoNotOptimize(built.CompressedBytes());
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<benchmark::IterationCount>(kBlocks));
}

void BM_BlockedGcBuildSequential(benchmark::State& state) {
  BlockedGcBuild(state, 0 /* no pool */);
}
BENCHMARK(BM_BlockedGcBuildSequential)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_BlockedGcBuildPooled4(benchmark::State& state) {
  BlockedGcBuild(state, 4);
}
BENCHMARK(BM_BlockedGcBuildPooled4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace gcm

int main(int argc, char** argv) {
  // --smoke: run every registered kernel exactly once (min_time=0 makes
  // google-benchmark stop after the first iteration) -- the CI guard that
  // keeps these code paths exercised without timing them.
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  char min_time[] = "--benchmark_min_time=0";
  if (smoke) args.push_back(min_time);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
