// Reproduces Table 4: the blockwise-reordered grammar compressors against
// CLA. For every dataset: 16 row blocks; PathCover and MWM (locally pruned
// CSM, k = 16) reorder each block independently; the algorithm with the
// better overall re_ans size is selected per matrix (the paper's rule);
// then re_iv and re_ans run the Eq. (4) loop with 16 threads. CLA
// compresses the same matrix and runs the same loop.
//
// Expected shape (paper): the grammar compressors beat CLA in compressed
// size on most matrices (CLA wins Higgs) and in time per iteration always
// (re_iv >= 3x faster, re_ans >= 2x); CLA's peak memory is far larger
// because it includes its own (re-run-every-time) compression phase --
// reproduced here by including ClaMatrix::Compress in the measured scope.

#include <cstdio>
#include <functional>

#include "bench/bench_common.hpp"
#include "core/blocked_matrix.hpp"
#include "core/power_iteration.hpp"
#include "reorder/block_reorder.hpp"
#include "util/memory_tracker.hpp"

using namespace gcm;

namespace {

struct Row {
  double size_pct;
  double peak_pct;
  double seconds_per_iter;
};

/// Backend-generic measurement: build an engine matrix, run Eq. (4).
/// When `include_build_peak` is set, the build phase participates in the
/// peak (the paper measured CLA that way: SystemDS recompresses at every
/// execution, so its compression phase dominates the reported peak).
Row Measure(const DenseMatrix& dense,
            const std::function<AnyMatrix()>& build, std::size_t iters,
            ThreadPool* pool, bool include_build_peak) {
  u64 before_build = MemoryTracker::CurrentBytes();
  MemoryTracker::ResetPeak();
  AnyMatrix matrix = build();
  u64 build_peak = MemoryTracker::PeakBytes();
  PowerIterationResult result =
      RunPowerIteration(matrix, iters, MulContext{pool});
  u64 peak = include_build_peak
                 ? std::max(build_peak, result.peak_heap_bytes)
                 : result.peak_heap_bytes;
  u64 attributable = peak > before_build ? peak - before_build : 0;
  return {bench::Pct(matrix.CompressedBytes(), dense.UncompressedBytes()),
          bench::Pct(attributable, dense.UncompressedBytes()),
          result.seconds_per_iteration};
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("table4_reordered_vs_cla",
                "Table 4: blockwise reordering + re_iv/re_ans vs CLA");
  bench::AddCommonFlags(&cli);
  cli.AddFlag("iters", "50", "iterations of Eq. (4); the paper uses 500");
  cli.AddFlag("threads", "16", "threads / row blocks");
  cli.AddFlag("csm_sample", "512", "rows sampled per block for the CSM");
  if (!cli.Parse(argc, argv)) return 0;

  const std::size_t iters = static_cast<std::size_t>(cli.GetInt("iters"));
  const std::size_t threads = static_cast<std::size_t>(cli.GetInt("threads"));
  ThreadPool pool(threads);

  bench::PrintHeader(
      "Table 4 -- blockwise-reordered re_iv / re_ans (16 blocks, better of "
      "PathCover/MWM,\nk=16 locally pruned CSM) vs CLA; size & peak as % of "
      "dense, time in sec/iter");
  std::printf("%-10s %-10s | %7s %8s %8s | %7s %8s %8s | %7s %8s %8s\n",
              "matrix", "reorder", "iv size", "iv mem", "iv t", "ans size",
              "ans mem", "ans t", "cla size", "cla mem", "cla t");

  bench::CsvAppender csv(cli);
  for (const DatasetProfile* profile : bench::SelectDatasets(cli)) {
    DenseMatrix dense = bench::Generate(*profile, cli);

    CsmOptions csm;
    csm.prune = CsmPrune::kLocal;
    csm.k = 16;
    csm.row_sample = static_cast<std::size_t>(cli.GetInt("csm_sample"));

    // Pick the better of PathCover and MWM by overall re_ans size
    // (the paper's per-matrix selection rule).
    ReorderAlgorithm candidates[2] = {ReorderAlgorithm::kPathCover,
                                      ReorderAlgorithm::kMwm};
    std::vector<std::vector<u32>> best_orders;
    ReorderAlgorithm best_algorithm = ReorderAlgorithm::kPathCover;
    u64 best_bytes = ~0ULL;
    for (ReorderAlgorithm algorithm : candidates) {
      std::vector<std::vector<u32>> orders =
          ComputeBlockOrders(dense, threads, algorithm, csm, &pool);
      BlockedGcMatrix probe = BlockedGcMatrix::Build(
          dense, threads, {GcFormat::kReAns, 12, 0}, orders);
      if (probe.CompressedBytes() < best_bytes) {
        best_bytes = probe.CompressedBytes();
        best_orders = std::move(orders);
        best_algorithm = algorithm;
      }
    }

    auto reordered = [&](GcFormat format) {
      return AnyMatrix::Wrap(BlockedGcMatrix::Build(
          dense, threads, {format, 12, 0}, best_orders));
    };
    Row iv = Measure(
        dense, [&] { return reordered(GcFormat::kReIv); }, iters, &pool,
        false);
    Row ans = Measure(
        dense, [&] { return reordered(GcFormat::kReAns); }, iters, &pool,
        false);
    Row cla = Measure(
        dense, [&] { return AnyMatrix::Build(dense, "cla"); }, iters, &pool,
        true);

    std::printf("%-10s %-10s | %6.2f%% %7.2f%% %8.4f | %6.2f%% %7.2f%% "
                "%8.4f | %6.2f%% %7.2f%% %8.4f\n",
                profile->name.c_str(), ReorderName(best_algorithm),
                iv.size_pct, iv.peak_pct, iv.seconds_per_iter, ans.size_pct,
                ans.peak_pct, ans.seconds_per_iter, cla.size_pct,
                cla.peak_pct, cla.seconds_per_iter);
    struct {
      const char* label;
      const Row* row;
    } reported[3] = {{"reordered_re_iv", &iv},
                     {"reordered_re_ans", &ans},
                     {"cla", &cla}};
    for (const auto& entry : reported) {
      csv.Row("table4", profile->name, entry.label, "size_pct",
              entry.row->size_pct);
      csv.Row("table4", profile->name, entry.label, "peak_mem_pct",
              entry.row->peak_pct);
      csv.Row("table4", profile->name, entry.label, "sec_per_iter",
              entry.row->seconds_per_iter);
    }
  }
  std::printf("\nCLA peak memory includes its compression phase (the paper "
              "measured SystemDS the\nsame way and reported it as an upper "
              "bound on the multiplication-phase memory).\n");
  return 0;
}
