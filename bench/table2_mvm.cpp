// Reproduces Table 2: peak memory (% of the dense representation) and
// average time per iteration for the Eq. (4) benchmark computation
//   y = M x,  z^t = y^t M,  x' = z / ||z||_inf
// for re_iv / re_ans single-threaded, and csrv / re_32 / re_iv / re_ans
// with 16 threads over 16 row blocks (Section 4.2).
//
// Expected shape (paper): single-thread peaks sit a few points above the
// Table 1 compressed sizes (the W array plus vectors); the 16-thread
// versions stay a small fraction of the dense size except on the barely
// compressible inputs; re_32 is the fastest grammar format, re_ans the most
// compact but slowest.
//
// Peak memory is measured as (high-water heap during the iterations) minus
// (heap before building the compressed representation), i.e. exactly the
// compressed matrix + auxiliary arrays + vectors, regardless of what else
// (e.g. the generator's dense copy) is alive in the process.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/blocked_matrix.hpp"
#include "core/power_iteration.hpp"
#include "util/memory_tracker.hpp"

using namespace gcm;

namespace {

struct Measurement {
  double peak_pct;
  double seconds_per_iter;
};

Measurement Measure(const DenseMatrix& dense, GcFormat format,
                    std::size_t blocks, std::size_t iters,
                    ThreadPool* pool) {
  u64 before_build = MemoryTracker::CurrentBytes();
  BlockedGcMatrix matrix =
      BlockedGcMatrix::Build(dense, blocks, {format, 12, 0});
  PowerIterationResult result = RunPowerIteration(matrix, iters, pool);
  u64 attributable = result.peak_heap_bytes > before_build
                         ? result.peak_heap_bytes - before_build
                         : 0;
  return {bench::Pct(attributable, dense.UncompressedBytes()),
          result.seconds_per_iteration};
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("table2_mvm", "Table 2: peak memory and time per iteration");
  bench::AddCommonFlags(&cli);
  cli.AddFlag("iters", "50",
              "iterations of Eq. (4); the paper uses 500");
  cli.AddFlag("threads", "16", "threads/blocks of the parallel variants");
  if (!cli.Parse(argc, argv)) return 0;

  const std::size_t iters = static_cast<std::size_t>(cli.GetInt("iters"));
  const std::size_t threads = static_cast<std::size_t>(cli.GetInt("threads"));
  ThreadPool pool(threads);

  bench::PrintHeader(
      "Table 2 -- peak memory (% of dense) and sec/iter, " +
      std::to_string(iters) + " iterations of Eq. (4)\n"
      "columns: re_iv/re_ans single thread; csrv/re_32/re_iv/re_ans with " +
      std::to_string(threads) + " threads x " + std::to_string(threads) +
      " row blocks");
  std::printf("%-10s | %8s %8s | %8s %8s | %8s %8s | %8s %8s | %8s %8s | "
              "%8s %8s\n",
              "matrix", "iv1 mem", "iv1 t", "ans1 mem", "ans1 t", "csrv mem",
              "csrv t", "re32 mem", "re32 t", "reiv mem", "reiv t",
              "reans mem", "reans t");

  for (const DatasetProfile* profile : bench::SelectDatasets(cli)) {
    DenseMatrix dense = bench::Generate(*profile, cli);
    Measurement iv1 = Measure(dense, GcFormat::kReIv, 1, iters, nullptr);
    Measurement ans1 = Measure(dense, GcFormat::kReAns, 1, iters, nullptr);
    Measurement csrv = Measure(dense, GcFormat::kCsrv, threads, iters, &pool);
    Measurement re32 = Measure(dense, GcFormat::kRe32, threads, iters, &pool);
    Measurement reiv = Measure(dense, GcFormat::kReIv, threads, iters, &pool);
    Measurement reans =
        Measure(dense, GcFormat::kReAns, threads, iters, &pool);
    std::printf("%-10s | %7.2f%% %8.4f | %7.2f%% %8.4f | %7.2f%% %8.4f | "
                "%7.2f%% %8.4f | %7.2f%% %8.4f | %7.2f%% %8.4f\n",
                profile->name.c_str(), iv1.peak_pct, iv1.seconds_per_iter,
                ans1.peak_pct, ans1.seconds_per_iter, csrv.peak_pct,
                csrv.seconds_per_iter, re32.peak_pct, re32.seconds_per_iter,
                reiv.peak_pct, reiv.seconds_per_iter, reans.peak_pct,
                reans.seconds_per_iter);
  }
  std::printf("\nPaper reference (500 iters, full datasets): e.g. Census "
              "re_iv1 4.37%% / re_ans1 4.11%%;\n16-thread peaks csrv 23.88%%,"
              " re_32 6.70%%, re_iv 6.14%%, re_ans 8.03%%.\n"
              "This machine exposes %u hardware thread(s); wall-clock "
              "speedups are bounded accordingly.\n",
              std::thread::hardware_concurrency());
  return 0;
}
