// Reproduces Table 2: peak memory (% of the dense representation) and
// average time per iteration for the Eq. (4) benchmark computation
//   y = M x,  z^t = y^t M,  x' = z / ||z||_inf
// for re_iv / re_ans single-threaded, and csrv / re_32 / re_iv / re_ans
// with 16 threads over 16 row blocks (Section 4.2).
//
// Every column is one AnyMatrix spec string; the measurement loop itself
// is backend-generic (build from spec, run the engine power iteration).
//
// Expected shape (paper): single-thread peaks sit a few points above the
// Table 1 compressed sizes (the W array plus vectors); the 16-thread
// versions stay a small fraction of the dense size except on the barely
// compressible inputs; re_32 is the fastest grammar format, re_ans the most
// compact but slowest.
//
// Peak memory is measured as (high-water heap during the iterations) minus
// (heap before building the compressed representation), i.e. exactly the
// compressed matrix + auxiliary arrays + vectors, regardless of what else
// (e.g. the generator's dense copy) is alive in the process.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/power_iteration.hpp"
#include "util/memory_tracker.hpp"

using namespace gcm;

namespace {

struct Config {
  const char* label;
  std::string spec;
  bool use_pool;
};

struct Measurement {
  double peak_pct;
  double seconds_per_iter;
};

Measurement Measure(const DenseMatrix& dense, const std::string& spec,
                    std::size_t iters, ThreadPool* pool,
                    const DatasetProfile& profile, const CliParser& cli) {
  u64 before_build = MemoryTracker::CurrentBytes();
  AnyMatrix matrix = bench::BuildCached(dense, spec, profile, cli);
  PowerIterationResult result =
      RunPowerIteration(matrix, iters, MulContext{pool});
  u64 attributable = result.peak_heap_bytes > before_build
                         ? result.peak_heap_bytes - before_build
                         : 0;
  return {bench::Pct(attributable, dense.UncompressedBytes()),
          result.seconds_per_iteration};
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("table2_mvm", "Table 2: peak memory and time per iteration");
  bench::AddCommonFlags(&cli);
  cli.AddFlag("iters", "50",
              "iterations of Eq. (4); the paper uses 500");
  cli.AddFlag("threads", "16", "threads/blocks of the parallel variants");
  if (!cli.Parse(argc, argv)) return 0;

  const std::size_t iters = static_cast<std::size_t>(cli.GetInt("iters"));
  const std::size_t threads = static_cast<std::size_t>(cli.GetInt("threads"));
  ThreadPool pool(threads);

  const std::string blocks = "?blocks=" + std::to_string(threads);
  const std::vector<Config> configs = {
      {"iv1", "gcm:re_iv", false},
      {"ans1", "gcm:re_ans", false},
      {"csrv", "gcm:csrv" + blocks, true},
      {"re32", "gcm:re_32" + blocks, true},
      {"reiv", "gcm:re_iv" + blocks, true},
      {"reans", "gcm:re_ans" + blocks, true},
  };

  bench::PrintHeader(
      "Table 2 -- peak memory (% of dense) and sec/iter, " +
      std::to_string(iters) + " iterations of Eq. (4)\n"
      "columns: re_iv/re_ans single thread; csrv/re_32/re_iv/re_ans with " +
      std::to_string(threads) + " threads x " + std::to_string(threads) +
      " row blocks");
  std::printf("%-10s |", "matrix");
  for (const Config& config : configs) {
    std::printf(" %8s mem %6s t |", config.label, config.label);
  }
  std::printf("\n");

  bench::CsvAppender csv(cli);
  for (const DatasetProfile* profile : bench::SelectDatasets(cli)) {
    DenseMatrix dense = bench::Generate(*profile, cli);
    std::printf("%-10s |", profile->name.c_str());
    for (const Config& config : configs) {
      Measurement m = Measure(dense, config.spec, iters,
                              config.use_pool ? &pool : nullptr, *profile,
                              cli);
      std::printf(" %11.2f%% %8.4f |", m.peak_pct, m.seconds_per_iter);
      csv.Row("table2", profile->name, config.label, "peak_mem_pct",
              m.peak_pct);
      csv.Row("table2", profile->name, config.label, "sec_per_iter",
              m.seconds_per_iter);
    }
    std::printf("\n");
  }
  std::printf("\nPaper reference (500 iters, full datasets): e.g. Census "
              "re_iv1 4.37%% / re_ans1 4.11%%;\n16-thread peaks csrv 23.88%%,"
              " re_32 6.70%%, re_iv 6.14%%, re_ans 8.03%%.\n"
              "This machine exposes %u hardware thread(s); wall-clock "
              "speedups are bounded accordingly.\n",
              std::thread::hardware_concurrency());
  return 0;
}
